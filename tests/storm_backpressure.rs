//! The Arbiter-backpressure contract, pinned as tests:
//!
//! * **batching is semantics-free**: on a reliable (zero-latency,
//!   zero-service-time) network, coalescing the §3.1 exchange into
//!   `RhoBatch`/`OfferBatch`/`WinBatch` messages reproduces the unbatched
//!   run's `SimReport` exactly — batching changes delivery *timing* under
//!   congestion, never auction decisions,
//! * **congestion degrades, coalescing recovers**: with a per-message
//!   Arbiter service time the ρ fan-in overruns its deadline and rounds
//!   miss; the same cell with batching enabled completes its rounds,
//! * **storm cells are deterministic**: the same seed reproduces the same
//!   report byte for byte, serial and parallel sweeps agree, and a
//!   congested + coalesced run records and replays through the
//!   `themis-msglog v1` transcript byte-identically.

use themis_bench::policies::Policy;
use themis_bench::scenarios::{ClusterKind, Matrix, Scenario, StormAxis};
use themis_bench::sweep::{run_replay_gate, run_sweep};
use themis_cluster::cluster::Cluster;
use themis_cluster::time::Time;
use themis_protocol::transport::FaultConfig;
use themis_sim::engine::Engine;
use themis_sim::metrics::SimReport;

/// An 8-app storm on the 16-GPU rack: every app arrives at time zero and
/// the auction fans out to the whole population each round.
fn storm_scenario(fault: FaultConfig) -> Scenario {
    Scenario::new(ClusterKind::Rack16, 8, 42)
        .with_fault(fault)
        .with_storm(StormAxis::new(0.5))
}

/// Runs a storm scenario with a tight horizon: the backpressure contract
/// is about round completion under congestion, not long-run makespan, so
/// a truncated-but-deterministic prefix is just as binding (and keeps the
/// suite fast in debug CI).
fn run_capped(scenario: &Scenario, cap_minutes: f64) -> SimReport {
    let config = scenario
        .sim_config()
        .with_max_sim_time(Time::minutes(cap_minutes));
    Engine::new(
        Cluster::new(scenario.cluster_spec()),
        scenario.trace(),
        scenario
            .instantiate(Policy::themis_dist_default())
            .build_with(&config),
        config,
    )
    .run()
}

/// A congested Arbiter: 1 s of inbox service per message. The query
/// fan-out plus serialized report fan-in take 2 × 8 × 1 s = 16 s, past
/// the 15 s ρ half-deadline of the storm's 30 s round deadline.
fn congested() -> FaultConfig {
    FaultConfig::reliable().with_arbiter_service_time(Time::seconds(1.0))
}

/// With zero service time, coalescing must be behavior-invisible: the
/// batch containers deliver at the same instants the individual messages
/// would have, so decisions — and the whole report, control block
/// included — are identical.
#[test]
fn batching_is_invisible_on_a_reliable_network() {
    let unbatched = storm_scenario(FaultConfig::reliable());
    let batched = storm_scenario(FaultConfig::reliable().with_arbiter_batch(4));
    let a = run_capped(&unbatched, 500.0);
    let b = run_capped(&batched, 500.0);
    let control = a.control.as_ref().expect("dist reports control stats");
    assert_eq!(control.completed_rounds, control.rounds);
    assert_eq!(a, b, "coalescing changed a zero-service-time run");
}

/// The tentpole's degradation-and-recovery claim in miniature: the
/// congested unbatched storm misses most of its rounds; the same storm
/// with 4-way coalescing (2 sends each way instead of 8) completes them.
#[test]
fn congestion_misses_rounds_and_coalescing_recovers_them() {
    let choked = run_capped(&storm_scenario(congested()), 300.0);
    let coalesced = run_capped(&storm_scenario(congested().with_arbiter_batch(4)), 300.0);

    let choked_control = choked.control.expect("dist reports control stats");
    let coalesced_control = coalesced.control.expect("dist reports control stats");
    let choked_rate = choked_control.missed_round_rate();
    let coalesced_rate = coalesced_control.missed_round_rate();
    assert!(
        choked_control.missed_rho_reports > 0 && choked_rate > 0.5,
        "8 apps x 1 s of service must overrun the 15 s rho deadline, got rate {choked_rate}"
    );
    assert!(
        coalesced_rate <= choked_rate / 2.0,
        "coalescing must recover at least half the missed-round rate: {choked_rate} -> {coalesced_rate}"
    );
    // Coalescing completes strictly more rounds in the same horizon.
    assert!(coalesced_control.completed_rounds > choked_control.completed_rounds);
}

/// A miniature storm matrix (free / congested / coalesced Arbiter over
/// one 5-app storm) pins the sweep-level contract: serial and parallel
/// runs render byte-identical canonical JSON, and re-running is a fixed
/// point.
#[test]
fn storm_sweeps_are_deterministic_and_parallelism_invariant() {
    let matrix = mini_storm_matrix();
    let serial = run_sweep(&matrix, 1);
    let parallel = run_sweep(&matrix, 4);
    assert_eq!(
        serial.to_canonical_string(),
        parallel.to_canonical_string(),
        "--jobs 4 must emit the same canonical JSON as --jobs 1"
    );
    assert_eq!(
        run_sweep(&matrix, 1).to_canonical_string(),
        serial.to_canonical_string(),
        "re-running the storm sweep must be a fixed point"
    );
    // Every cell carries the control block, and the congested cell's
    // backlog shows up as strictly more rounds than the free cell's (the
    // retry path re-attempts what congestion misses).
    for cell in &serial.cells {
        let control = cell
            .metrics
            .control
            .as_ref()
            .expect("dist cells report control");
        assert!(control.rounds > 0);
    }
}

/// Congested + coalesced storm runs must round-trip the `themis-msglog
/// v1` transcript: the batch messages and service-time-shifted deliveries
/// are recorded, and replaying from the transcript alone reproduces the
/// canonical report byte for byte. This is the same gate CI runs over the
/// full storm matrix.
#[test]
fn coalesced_congested_storms_record_and_replay_exactly() {
    let outcomes = run_replay_gate(&mini_storm_matrix());
    assert_eq!(outcomes.len(), 3, "three distributed cells");
    for outcome in &outcomes {
        assert!(outcome.records > 0, "{} transcribed nothing", outcome.id);
        assert!(outcome.matched, "replay diverged on {}", outcome.id);
    }
    // The coalesced cell's transcript really contains batch messages.
    let coalesced = outcomes.last().expect("coalesced cell is the last fault");
    for tag in ["rho-batch:", "offer-batch:", "win-batch:"] {
        assert!(
            coalesced.log_text.contains(tag),
            "coalesced transcript missing {tag} messages"
        );
    }
}

/// The committed storm baseline must be the canonical rendering of a
/// 36-cell storm sweep (regenerated via `sweep --out`, never
/// hand-edited), and it must contain the matrix's centerpiece: the
/// collapsed cell whose Arbiter never completes a single round. The
/// metric values themselves are gated in CI (`--check`), where the
/// release-mode re-run is affordable.
#[test]
fn committed_storm_baseline_is_canonical_and_contains_the_collapse() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_STORM_BASELINE.json"
    ))
    .expect("BENCH_STORM_BASELINE.json is committed at the repo root");
    let baseline = themis_bench::report::SweepReport::parse_str(&text).expect("baseline parses");
    assert_eq!(
        baseline.to_canonical_string(),
        text,
        "BENCH_STORM_BASELINE.json is not in canonical form"
    );
    assert_eq!(baseline.cells.len(), Matrix::storm().cells().len());
    for cell in &baseline.cells {
        let control = cell
            .metrics
            .control
            .as_ref()
            .expect("dist cells report control");
        assert!(control.rounds > 0, "{} ran no rounds", cell.id);
    }
    let collapsed: Vec<_> = baseline
        .cells
        .iter()
        .filter(|c| {
            c.metrics
                .control
                .as_ref()
                .is_some_and(|ctrl| ctrl.completed_rounds == 0)
        })
        .collect();
    assert_eq!(
        collapsed.len(),
        1,
        "exactly one cell collapses: Scale1024 x 32 apps, congested, unbatched, 30 s deadline"
    );
    let id = &collapsed[0].id;
    assert!(
        id.starts_with("scale1024") && id.contains("-a32-") && id.ends_with("-t0.5/themis-dist"),
        "unexpected collapsed cell {id}"
    );
    assert!(!id.contains("-k"), "the collapsed cell is unbatched");
}

/// Free, congested and congested-but-coalesced Arbiter regimes over one
/// cheap 5-app Rack16 storm — the storm matrix's fault axis in miniature.
fn mini_storm_matrix() -> Matrix {
    let congested = FaultConfig::reliable().with_arbiter_service_time(Time::seconds(0.5));
    Matrix {
        policies: vec![Policy::themis_dist_default()],
        faults: vec![
            FaultConfig::reliable(),
            congested,
            congested.with_arbiter_batch(4),
        ],
        storm: vec![Some(StormAxis::new(0.5))],
        ..Matrix::point("storm-mini", ClusterKind::Rack16, 5, 42)
    }
}

//! The heterogeneity contract, pinned as tests:
//!
//! * **speed-1.0 purity** — a spec pushed through the generation machinery
//!   with every machine at the reference speed produces `SimReport`s
//!   *identical* to the untouched homogeneous spec, for every policy,
//!   across randomized smoke-matrix scenarios (the whole speed-aware
//!   scheduling path must be observationally pure at uniform speed),
//! * **faster-GPU preference is conservative** — on a mixed-generation
//!   cluster every policy's preference for fast silicon still hands out
//!   only free GPUs, never one twice, and lands on the fastest machines
//!   when locality ties,
//! * the `hetero` matrix matches the committed
//!   `BENCH_HETERO_BASELINE.json` byte for byte — the same gate the
//!   `scenario-matrix` CI job enforces, with the uniform column doubling
//!   as a standing purity witness.

use proptest::prelude::*;
use std::collections::BTreeSet;
use themis_bench::policies::Policy;
use themis_bench::report::{compare_reports, SweepReport};
use themis_bench::scenarios::{ClusterKind, GenMix, Matrix, Scenario};
use themis_bench::sweep::run_sweep;
use themis_cluster::cluster::Cluster;
use themis_cluster::ids::GpuId;
use themis_cluster::time::Time;
use themis_cluster::topology::GpuGeneration;
use themis_sim::arena::AppArena;
use themis_sim::engine::Engine;
use themis_sim::scheduler::{AllocationDecision, Scheduler};

/// The purity pool: every smoke-matrix scenario × every policy (the smoke
/// matrix covers contention, fairness-knob and burstiness axes).
fn purity_cells() -> Vec<(Scenario, Policy)> {
    Matrix::smoke().cells()
}

/// Runs one cell on an explicit cluster spec.
fn run_on_spec(
    scenario: &Scenario,
    policy: Policy,
    spec: themis_cluster::topology::ClusterSpec,
) -> themis_sim::metrics::SimReport {
    let config = scenario.sim_config();
    Engine::new(
        Cluster::new(spec),
        scenario.trace(),
        scenario.instantiate(policy).build_with(&config),
        config,
    )
    .run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// A speed-1.0-everywhere *heterogeneous* spec — the homogeneous
    /// topology explicitly rebuilt through `with_generation_cycle` at the
    /// reference generation — must be indistinguishable from the
    /// homogeneous spec: identical `SimReport`s, cell by cell.
    #[test]
    fn unit_speed_hetero_spec_reproduces_homogeneous_reports(index in 0usize..5000) {
        let cells = purity_cells();
        let (scenario, policy) = cells[index % cells.len()].clone();
        let homogeneous = scenario.cluster.spec();
        let unit_hetero = scenario
            .cluster
            .spec()
            .with_generation_cycle(&[GpuGeneration::Pascal]);
        prop_assert_eq!(&unit_hetero, &homogeneous, "the specs themselves must be equal");
        let a = run_on_spec(&scenario, policy, homogeneous);
        let b = run_on_spec(&scenario, policy, unit_hetero);
        prop_assert_eq!(
            a,
            b,
            "unit-speed heterogeneity changed {} on {}",
            policy.name(),
            scenario.id()
        );
    }
}

/// Faster-GPU preference never violates GPU conservation: on a
/// mixed-generation cluster, one scheduling round per policy hands out
/// only existing, free GPUs, never the same GPU twice — and when every
/// machine ties on locality, the fast machines are the ones granted.
#[test]
fn faster_gpu_preference_conserves_gpus() {
    // Volta/Pascal alternating per machine (the 2:1 mix).
    let scenario = Scenario::new(ClusterKind::Rack16, 4, 17)
        .with_contention(2.0)
        .with_gen_mix(GenMix::TwoGen);
    let spec = scenario.cluster_spec();
    for policy in [
        Policy::themis_default(),
        Policy::themis_dist_default(),
        Policy::Gandiva,
        Policy::Slaq,
        Policy::Tiresias,
        Policy::Drf,
    ] {
        let config = scenario.sim_config();
        let cluster = Cluster::new(spec.clone());
        let apps: AppArena = scenario
            .trace()
            .into_iter()
            .map(themis_sim::app_runtime::AppRuntime::with_default_hpo)
            .collect();
        let mut scheduler = scenario.instantiate(policy).build_with(&config);
        // Schedule at a time every app has arrived at.
        let decisions: Vec<AllocationDecision> =
            scheduler.schedule(Time::minutes(10_000.0), &cluster, &apps);
        assert!(!decisions.is_empty(), "{} granted nothing", policy.name());
        let mut granted: BTreeSet<GpuId> = BTreeSet::new();
        for decision in &decisions {
            for gpu in &decision.gpus {
                assert!(
                    cluster.is_free(*gpu),
                    "{} granted non-free {gpu:?}",
                    policy.name()
                );
                assert!(
                    granted.insert(*gpu),
                    "{} granted {gpu:?} twice",
                    policy.name()
                );
            }
        }
        assert!(granted.len() <= cluster.total_gpus());
        // With demand below capacity impossible here (contention 2x), the
        // whole cluster is handed out; otherwise the *fast* half must be
        // fully used before any slow GPU is left idle by a speed-aware
        // policy. Both cases reduce to: every Volta GPU is granted.
        let volta: BTreeSet<GpuId> = spec
            .all_gpus()
            .filter(|g| spec.speed_of(*g) == Some(2.0))
            .collect();
        assert!(
            volta.is_subset(&granted),
            "{} left fast GPUs idle while granting slow ones: granted {granted:?}",
            policy.name()
        );
    }
}

/// The `hetero` matrix is gated exactly against its committed baseline,
/// mirroring the smoke and faults gates. The uniform column is a standing
/// speed-1.0-purity witness: those cells' metrics can only change when the
/// *scheduling* behavior changes, never when the heterogeneity model does.
#[test]
fn hetero_sweep_matches_committed_baseline() {
    let matrix = Matrix::hetero();
    let report = run_sweep(&matrix, 2);
    let baseline_text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_HETERO_BASELINE.json"
    ))
    .expect("BENCH_HETERO_BASELINE.json is committed at the repo root");
    let baseline = SweepReport::parse_str(&baseline_text).expect("baseline parses");
    let diffs = compare_reports(&report, &baseline, 1e-9);
    assert!(
        diffs.is_empty(),
        "hetero sweep diverged from BENCH_HETERO_BASELINE.json — if intentional, regenerate it \
         (see README 'Running scenario sweeps'):\n{}",
        diffs.join("\n")
    );
    assert_eq!(
        report.to_canonical_string(),
        baseline_text,
        "hetero sweep canonical JSON is not byte-identical to BENCH_HETERO_BASELINE.json"
    );
    // Mixed-generation cells genuinely differ from their uniform siblings —
    // the axis is open, not decorative: with more aggregate speed the same
    // trace finishes sooner.
    for policy in ["themis", "tiresias"] {
        let cell = |mix: &str| {
            report
                .cells
                .iter()
                .find(|c| {
                    c.policy == policy
                        && c.scenario.gen_mix.name() == mix
                        && c.scenario.contention == 2.0
                })
                .unwrap_or_else(|| panic!("{policy}/{mix} cell exists"))
        };
        let uni = cell("uni");
        let two = cell("2gen");
        assert!(
            two.metrics.avg_jct_minutes.unwrap() < uni.metrics.avg_jct_minutes.unwrap(),
            "{policy}: a 1.5x-faster fleet must lower mean JCT"
        );
    }
}

//! End-to-end reproduction checks: the *shape* of the paper's headline
//! results must hold on the simulator (who wins, by roughly what factor),
//! even though absolute numbers differ from the authors' testbed.

use themis_bench::experiments::{fig10, fig11, fig2, fig5a, fig5b, fig9a, macrobenchmark, Scale};
use themis_bench::policies::Policy;

/// A moderate scale that keeps each test to a few seconds while leaving
/// enough contention for the comparisons to be meaningful.
fn scale() -> Scale {
    Scale {
        sim_apps: 8,
        testbed_apps: 8,
        seed: 42,
    }
}

#[test]
fn themis_wins_on_max_fairness() {
    // Figure 5a's headline: Themis has the lowest worst-case finish-time
    // fairness of all schedulers.
    let table = fig5a(scale());
    let mut by_name = std::collections::BTreeMap::new();
    for (i, row) in table.rows.iter().enumerate() {
        by_name.insert(row[0].clone(), table.cell_f64(i, "max_rho").unwrap());
    }
    let themis = by_name["themis"];
    for (name, value) in &by_name {
        if name != "themis" {
            assert!(
                themis <= *value * 1.2,
                "themis ({themis:.2}) must not be materially worse than {name} ({value:.2})"
            );
        }
    }
    // And it should be a clear improvement over at least one baseline.
    let worst_baseline = by_name
        .iter()
        .filter(|(n, _)| n.as_str() != "themis")
        .map(|(_, v)| *v)
        .fold(f64::MIN, f64::max);
    assert!(
        worst_baseline / themis > 1.2,
        "themis ({themis:.2}) should clearly beat the worst baseline ({worst_baseline:.2})"
    );
}

#[test]
fn themis_jains_index_is_competitive() {
    // Figure 5b: Themis has the best (or tied-best) Jain's index; Tiresias
    // comes closest.
    let table = fig5b(scale());
    let mut by_name = std::collections::BTreeMap::new();
    for (i, row) in table.rows.iter().enumerate() {
        by_name.insert(row[0].clone(), table.cell_f64(i, "jains_index").unwrap());
    }
    let themis = by_name["themis"];
    assert!(themis > 0.5, "themis Jain's index {themis}");
    for (name, value) in &by_name {
        assert!(
            themis >= value - 0.15,
            "themis ({themis:.3}) must be competitive with {name} ({value:.3})"
        );
    }
}

#[test]
fn placement_sensitivity_figure2_shape() {
    // VGG16 collapses when spread across machines; ResNet50 does not.
    let table = fig2();
    let vgg = table.cell_f64(0, "slowdown").unwrap();
    let resnet = table.cell_f64(4, "slowdown").unwrap();
    assert!(vgg > 1.5 && resnet < 1.1, "vgg {vgg}, resnet {resnet}");
}

#[test]
fn network_intensive_apps_grow_the_gap_over_tiresias() {
    // Figure 9a: the improvement factor of Themis over Tiresias grows as
    // the workload becomes more network intensive.
    let table = fig9a(Scale {
        sim_apps: 6,
        testbed_apps: 6,
        seed: 7,
    });
    let first = table.cell_f64(0, "improvement_factor").unwrap();
    let last = table
        .cell_f64(table.rows.len() - 1, "improvement_factor")
        .unwrap();
    assert!(
        last >= first * 0.9,
        "improvement at 100% network-intensive ({last:.2}) should not collapse vs 0% ({first:.2})"
    );
    assert!(
        last >= 0.95,
        "themis must roughly match or beat tiresias when all apps are network-intensive (got {last:.2})"
    );
}

#[test]
fn contention_hurts_tiresias_fairness_more() {
    // Figure 10: Jain's index degrades faster for Tiresias than Themis as
    // contention increases.
    let table = fig10(Scale {
        sim_apps: 6,
        testbed_apps: 6,
        seed: 13,
    });
    let themis_high = table.cell_f64(table.rows.len() - 1, "themis_jain").unwrap();
    let tiresias_high = table
        .cell_f64(table.rows.len() - 1, "tiresias_jain")
        .unwrap();
    assert!(
        themis_high >= tiresias_high - 0.1,
        "at 4x contention themis ({themis_high:.3}) should hold up at least as well as tiresias ({tiresias_high:.3})"
    );
}

#[test]
fn rho_errors_do_not_blow_up_fairness() {
    // Figure 11: even 20% error in bid valuations leaves max fairness in
    // the same ballpark as the error-free run.
    let table = fig11(Scale {
        sim_apps: 6,
        testbed_apps: 6,
        seed: 21,
    });
    let clean = table.cell_f64(0, "max_rho").unwrap();
    let noisy = table.cell_f64(table.rows.len() - 1, "max_rho").unwrap();
    assert!(
        noisy <= clean * 1.75,
        "20% valuation error ({noisy:.2}) must not massively degrade fairness vs clean ({clean:.2})"
    );
}

#[test]
fn macrobenchmark_reports_are_complete() {
    for (policy, report) in macrobenchmark(Scale::tiny()) {
        assert_eq!(
            report.unfinished_apps(),
            0,
            "{}: all apps must finish at tiny scale",
            policy.name()
        );
        assert!(report.scheduling_rounds > 0);
        assert_eq!(report.scheduler, policy.name());
    }
}

#[test]
fn every_policy_name_is_unique() {
    let names: std::collections::BTreeSet<&str> = [
        Policy::themis_default(),
        Policy::Gandiva,
        Policy::Tiresias,
        Policy::Slaq,
        Policy::Drf,
    ]
    .iter()
    .map(|p| p.name())
    .collect();
    assert_eq!(names.len(), 5);
}

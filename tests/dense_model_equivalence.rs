//! Property tests: the dense allocation structures agree with the ordered
//! reference model they replaced.
//!
//! The PR that introduced the dense scheduler core swapped `GpuAlloc` from
//! a `BTreeSet<GpuId>` to a sorted vector and `FreeVector` from a
//! `BTreeMap<MachineId, usize>` to a machine-indexed count vector, with the
//! explicit contract that every observable behavior — membership, counts,
//! iteration order, set algebra — is unchanged. These tests drive both
//! representations through randomized operation sequences against the old
//! ordered-tree types as the model, so any divergence (a broken merge, a
//! stale cached total, a trailing-zero equality bug) fails here before it
//! can perturb a scheduling decision.

use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use themis_cluster::alloc::{FreeVector, GpuAlloc};
use themis_cluster::ids::{GpuId, MachineId};
use themis_cluster::topology::ClusterSpec;

/// The shared test topology: 3 racks × 4 machines × 4 GPUs = 48 GPUs,
/// so random ids in `0..64` also exercise unknown-GPU handling.
fn spec() -> ClusterSpec {
    ClusterSpec::homogeneous(3, 4, 4)
}

fn model_per_machine(model: &BTreeSet<u32>, spec: &ClusterSpec) -> BTreeMap<MachineId, usize> {
    let mut counts = BTreeMap::new();
    for gpu in model {
        if let Some(machine) = spec.machine_of(GpuId(*gpu)) {
            *counts.entry(machine).or_insert(0) += 1;
        }
    }
    counts
}

/// Checks every observable of a `GpuAlloc` against the `BTreeSet` model.
fn assert_alloc_matches(alloc: &GpuAlloc, model: &BTreeSet<u32>, spec: &ClusterSpec) {
    assert_eq!(alloc.len(), model.len());
    assert_eq!(alloc.is_empty(), model.is_empty());
    let dense: Vec<u32> = alloc.iter().map(|g| g.0).collect();
    let reference: Vec<u32> = model.iter().copied().collect();
    assert_eq!(dense, reference, "iteration order must match the BTreeSet");
    assert_eq!(alloc.per_machine(spec), model_per_machine(model, spec));
    let machines: BTreeSet<MachineId> = model
        .iter()
        .filter_map(|g| spec.machine_of(GpuId(*g)))
        .collect();
    assert_eq!(alloc.machines(spec), machines);
    for gpu in 0..70u32 {
        assert_eq!(alloc.contains(GpuId(gpu)), model.contains(&gpu));
    }
}

/// Checks every observable of a `FreeVector` against the `BTreeMap` model.
fn assert_vector_matches(vector: &FreeVector, model: &BTreeMap<u32, usize>) {
    let model_nonzero: Vec<(MachineId, usize)> = model
        .iter()
        .filter(|(_, c)| **c > 0)
        .map(|(m, c)| (MachineId(*m), *c))
        .collect();
    assert_eq!(vector.total(), model.values().sum::<usize>());
    assert_eq!(vector.is_empty(), vector.total() == 0);
    assert_eq!(
        vector.iter().collect::<Vec<_>>(),
        model_nonzero,
        "iteration order must match the BTreeMap"
    );
    assert_eq!(
        vector.machines().collect::<Vec<_>>(),
        model_nonzero.iter().map(|(m, _)| *m).collect::<Vec<_>>()
    );
    for machine in 0..40u32 {
        assert_eq!(
            vector.on_machine(MachineId(machine)),
            model.get(&machine).copied().unwrap_or(0),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Randomized insert/remove sequences keep the dense `GpuAlloc` in
    /// lock-step with a `BTreeSet` model, and the set algebra (union,
    /// difference, intersection, disjointness) agrees on every prefix.
    #[test]
    fn gpu_alloc_agrees_with_btree_set_model(
        ops in prop::collection::vec((0u8..2, 0u32..64), 0..120),
        other in prop::collection::vec(0u32..64, 0..40),
    ) {
        let spec = spec();
        let mut alloc = GpuAlloc::empty();
        let mut model: BTreeSet<u32> = BTreeSet::new();
        for (op, gpu) in ops {
            match op {
                0 => prop_assert_eq!(alloc.insert(GpuId(gpu)), model.insert(gpu)),
                _ => prop_assert_eq!(alloc.remove(GpuId(gpu)), model.remove(&gpu)),
            }
            assert_alloc_matches(&alloc, &model, &spec);
        }

        // Set algebra against a second randomized set.
        let other_alloc = GpuAlloc::from_gpus(other.iter().map(|g| GpuId(*g)));
        let other_model: BTreeSet<u32> = other.into_iter().collect();
        assert_alloc_matches(
            &alloc.union(&other_alloc),
            &model.union(&other_model).copied().collect(),
            &spec,
        );
        assert_alloc_matches(
            &alloc.difference(&other_alloc),
            &model.difference(&other_model).copied().collect(),
            &spec,
        );
        assert_alloc_matches(
            &alloc.intersection(&other_alloc),
            &model.intersection(&other_model).copied().collect(),
            &spec,
        );
        prop_assert_eq!(
            alloc.is_disjoint(&other_alloc),
            model.is_disjoint(&other_model)
        );
        // Round-trip through the constructor preserves equality.
        prop_assert_eq!(&GpuAlloc::from_gpus(alloc.iter()), &alloc);
    }

    /// Randomized set/add/saturating-sub/scale sequences keep the dense
    /// `FreeVector` in lock-step with a `BTreeMap` model, including the
    /// "machines with zero count are omitted" equality semantics.
    #[test]
    fn free_vector_agrees_with_btree_map_model(
        ops in prop::collection::vec((0u8..4, 0u32..24, 0usize..6), 0..80),
    ) {
        let mut vector = FreeVector::empty();
        let mut model: BTreeMap<u32, usize> = BTreeMap::new();
        for (op, machine, count) in ops {
            let m = MachineId(machine);
            match op {
                0 => {
                    vector.set(m, count);
                    if count == 0 {
                        model.remove(&machine);
                    } else {
                        model.insert(machine, count);
                    }
                }
                1 => {
                    let delta = FreeVector::from_counts([(m, count)]);
                    vector = vector.add(&delta);
                    if count > 0 {
                        *model.entry(machine).or_insert(0) += count;
                    }
                }
                2 => {
                    let delta = FreeVector::from_counts([(m, count)]);
                    vector = vector.saturating_sub(&delta);
                    if count > 0 {
                        if let Some(current) = model.get_mut(&machine) {
                            *current = current.saturating_sub(count);
                            if *current == 0 {
                                model.remove(&machine);
                            }
                        }
                    }
                }
                _ => {
                    vector = vector.scale_floor(0.5);
                    model = model
                        .iter()
                        .map(|(m, c)| (*m, c / 2))
                        .filter(|(_, c)| *c > 0)
                        .collect();
                }
            }
            assert_vector_matches(&vector, &model);
        }

        // Equality matches the sparse model's: rebuilding from the nonzero
        // pairs yields an equal vector regardless of mutation history.
        let rebuilt = FreeVector::from_counts(vector.iter());
        prop_assert_eq!(&rebuilt, &vector);
        // contains_vector agrees with a per-machine comparison.
        prop_assert!(vector.contains_vector(&rebuilt));
        prop_assert!(vector.contains_vector(&vector.scale_floor(0.5)));
    }

    /// `FreeVector::from_gpus` matches the per-machine counts of the
    /// deduplicated GPU set (duplicates count once), and `add_assign`
    /// matches `add`.
    #[test]
    fn free_vector_from_gpus_and_add_assign(
        gpus in prop::collection::vec(0u32..48, 0..48),
        extra in prop::collection::vec((0u32..24, 1usize..5), 0..12),
    ) {
        let spec = spec();
        let vector = FreeVector::from_gpus(gpus.iter().map(|g| GpuId(*g)), &spec);
        let dedup: BTreeSet<u32> = gpus.into_iter().collect();
        let alloc = GpuAlloc::from_gpus(dedup.iter().map(|g| GpuId(*g)));
        let per_machine = alloc.per_machine(&spec);
        prop_assert_eq!(vector.total(), per_machine.values().sum::<usize>());
        for (machine, count) in per_machine {
            prop_assert_eq!(vector.on_machine(machine), count);
        }

        let delta = FreeVector::from_counts(extra.iter().map(|(m, c)| (MachineId(*m), *c)));
        let mut in_place = vector.clone();
        in_place.add_assign(&delta);
        prop_assert_eq!(in_place, vector.add(&delta));
    }
}

//! Property test: every scheduling policy conserves GPUs.
//!
//! A `ConservationGuard` wraps the policy under test and audits every
//! scheduling round *before* the engine applies it: no decision may hand
//! out a GPU that is not currently free, no GPU may be granted twice in
//! one round, every granted GPU must exist in the cluster topology, and
//! the grand total (already allocated + granted this round) can never
//! exceed cluster capacity. Scenarios come from the scenario-matrix
//! generator with randomized axis values, so the invariant is exercised
//! across contention levels, fairness knobs, leases, bursty arrivals,
//! heavy 8-GPU jobs, GPU-generation mixes (where the speed-aware paths
//! prefer fast silicon) and (for the distributed mode) transport faults —
//! for both Themis modes and all four baselines. A dropped `Win`
//! notification or an Agent that misses a round mid-lease must never
//! leak or double-lease a GPU; the actor-runtime cases extend the audit
//! to split-and-heal partitions, jittered reordering, Arbiter failover
//! and bandwidth-serialized links, where the reservation discipline
//! behind in-flight Wins also counts against capacity.

use proptest::prelude::*;
use std::collections::BTreeSet;
use themis_bench::policies::Policy;
use themis_bench::scenarios::{ClusterKind, GenMix, Matrix, Scenario};
use themis_cluster::cluster::Cluster;
use themis_cluster::ids::GpuId;
use themis_cluster::time::Time;
use themis_core::actors::DistributedThemisScheduler;
use themis_protocol::transport::FaultConfig;
use themis_sim::arena::AppArena;
use themis_sim::engine::Engine;
use themis_sim::scheduler::{AllocationDecision, Scheduler};

/// Scheduler wrapper that panics the moment the inner policy's decisions
/// would violate GPU conservation.
struct ConservationGuard {
    inner: Box<dyn Scheduler>,
}

impl Scheduler for ConservationGuard {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn schedule(
        &mut self,
        now: Time,
        cluster: &Cluster,
        apps: &AppArena,
    ) -> Vec<AllocationDecision> {
        let decisions = self.inner.schedule(now, cluster, apps);
        let free: BTreeSet<GpuId> = cluster.free_gpus().into_iter().collect();
        let mut granted: BTreeSet<GpuId> = BTreeSet::new();
        for decision in &decisions {
            for gpu in &decision.gpus {
                assert!(
                    cluster.spec().machine_of(*gpu).is_some(),
                    "{} granted nonexistent {gpu:?} to app {:?} at t={now:?}",
                    self.inner.name(),
                    decision.app,
                );
                assert!(
                    free.contains(gpu),
                    "{} granted non-free {gpu:?} to app {:?} at t={now:?}",
                    self.inner.name(),
                    decision.app,
                );
                assert!(
                    granted.insert(*gpu),
                    "{} granted {gpu:?} twice in one round at t={now:?}",
                    self.inner.name(),
                );
            }
        }
        assert!(
            cluster.allocated_gpus() + granted.len() <= cluster.total_gpus(),
            "{} over-committed the cluster at t={now:?}: {} allocated + {} granted > {} total",
            self.inner.name(),
            cluster.allocated_gpus(),
            granted.len(),
            cluster.total_gpus(),
        );
        decisions
    }

    fn next_wakeup(&self) -> Option<Time> {
        // The actor runtime relies on engine wakeups for its in-flight
        // messages and deadlines; a guard that swallowed them would turn
        // every delayed round into a missed one.
        self.inner.next_wakeup()
    }
}

/// Like [`ConservationGuard`], but for the concrete actor runtime: it
/// additionally audits the reservation discipline that backs in-flight
/// `Win` notifications — GPUs held behind unconfirmed Wins also count
/// against capacity, and a granted GPU must never still be reserved.
struct ActorReservationGuard {
    inner: DistributedThemisScheduler,
}

impl Scheduler for ActorReservationGuard {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn schedule(
        &mut self,
        now: Time,
        cluster: &Cluster,
        apps: &AppArena,
    ) -> Vec<AllocationDecision> {
        let decisions = self.inner.schedule(now, cluster, apps);
        let free: BTreeSet<GpuId> = cluster.free_gpus().into_iter().collect();
        let mut granted: BTreeSet<GpuId> = BTreeSet::new();
        for decision in &decisions {
            for gpu in &decision.gpus {
                assert!(
                    free.contains(gpu),
                    "actor runtime granted non-free {gpu:?} at t={now:?}"
                );
                assert!(
                    granted.insert(*gpu),
                    "actor runtime granted {gpu:?} twice in one round at t={now:?}"
                );
            }
        }
        // Reserved GPUs are free in the cluster but spoken for: a grant
        // returned this round has already been unreserved, so allocated +
        // granted + still-reserved can never exceed capacity. A partition
        // healing into a duplicate grant, or a failover leaking a pending
        // Win's reservation, breaks this sum.
        let reserved = self.inner.reserved_gpus();
        assert!(
            cluster.allocated_gpus() + granted.len() + reserved <= cluster.total_gpus(),
            "actor runtime over-committed at t={now:?}: {} allocated + {} granted + {} reserved > {} total",
            cluster.allocated_gpus(),
            granted.len(),
            reserved,
            cluster.total_gpus(),
        );
        decisions
    }

    fn next_wakeup(&self) -> Option<Time> {
        self.inner.next_wakeup()
    }
}

/// The randomized scenario pool: the matrix generator expanded over wide
/// axis values, including the bursty/heavy workload knobs and a faulty
/// transport point (which only the distributed policy runs).
fn property_cells() -> Vec<(Scenario, Policy)> {
    let matrix = Matrix {
        gen_mix: GenMix::ALL.to_vec(),
        apps: vec![2, 4],
        contention: vec![1.0, 4.0],
        fairness_knob: vec![0.2, 0.8],
        lease_minutes: vec![5.0, 20.0],
        burst_fraction: vec![0.0, 0.7],
        heavy_job_fraction: vec![0.0, 0.4],
        faults: vec![
            FaultConfig::reliable(),
            FaultConfig::reliable()
                .with_drop_probability(0.3)
                .with_delay(Time::seconds(8.0))
                .with_crash(3, 2),
            FaultConfig::reliable()
                .with_delay(Time::seconds(2.0))
                .with_jitter(Time::seconds(5.0))
                .with_bandwidth(120.0)
                .with_partition(4, 2)
                .with_failover(5),
        ],
        seeds: vec![11, 29],
        ..Matrix::point("property", ClusterKind::Rack16, 4, 11)
    };
    matrix.cells()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random cells of the property matrix keep GPUs conserved round by
    /// round. The horizon is capped: conservation is a per-round
    /// invariant, so auditing a prefix of a long run still proves it.
    #[test]
    fn policies_conserve_gpus_across_random_scenarios(index in 0usize..5000) {
        let cells = property_cells();
        let (scenario, policy) = cells[index % cells.len()].clone();
        let config = scenario
            .sim_config()
            .with_max_sim_time(Time::minutes(30_000.0));
        let guard = ConservationGuard {
            inner: scenario.instantiate(policy).build_with(&config),
        };
        let cluster = Cluster::new(scenario.cluster_spec());
        let report = Engine::new(cluster, scenario.trace(), guard, config).run();
        prop_assert!(
            report.scheduling_rounds > 0,
            "guarded run of {} on {} never scheduled",
            policy.name(),
            scenario.id(),
        );
    }
}

/// Pinned-seed audit of the distributed scheduler under every fault class
/// at once: drops, delays and an agent crashing mid-lease. The guard
/// asserts round-by-round that no GPU is granted twice, granted while
/// leased, or conjured from nowhere — i.e. a `Win` lost in transit voids
/// the grant instead of leaking it, and a crashed Agent's leases are
/// reclaimed normally.
#[test]
fn distributed_scheduler_conserves_gpus_under_faults() {
    for (drop, delay_s, crash) in [(0.4, 0.0, (0, 0)), (0.0, 5.0, (2, 1)), (0.3, 5.0, (3, 2))] {
        let scenario = Scenario::new(ClusterKind::Rack16, 5, 23)
            .with_contention(2.0)
            .with_fault(
                FaultConfig::reliable()
                    .with_drop_probability(drop)
                    .with_delay(Time::seconds(delay_s))
                    .with_crash(crash.0, crash.1),
            );
        let config = scenario
            .sim_config()
            .with_max_sim_time(Time::minutes(30_000.0));
        let guard = ConservationGuard {
            inner: scenario
                .instantiate(Policy::themis_dist_default())
                .build_with(&config),
        };
        let report = Engine::new(
            Cluster::new(scenario.cluster_spec()),
            scenario.trace(),
            guard,
            config,
        )
        .run();
        assert!(
            report.scheduling_rounds > 0,
            "faulty run {} never scheduled",
            scenario.id()
        );
        assert_eq!(
            report.finished_apps() + report.unfinished_apps(),
            5,
            "every app accounted for in {}",
            scenario.id()
        );
    }
}

/// Pinned-seed audit of the actor-runtime fault axes the instant path
/// never had: split-and-heal partitions, jitter-induced reordering,
/// Arbiter failover and bandwidth-serialized links. The reservation-aware
/// guard asserts every round that a `Win` lost to a cut link or a failed
/// Arbiter voids its grant (reserved GPUs still count against capacity)
/// and that a healed partition never double-grants; the engine must
/// terminate with every app accounted for — no wedged rounds, no leaked
/// GPUs.
#[test]
fn actor_runtime_conserves_gpus_under_partitions_reorder_and_failover() {
    let fault_cases = [
        // Split-and-heal partitions every 3rd round, lasting 1 round.
        FaultConfig::reliable().with_partition(3, 1),
        // Reordering: jitter dominates the fixed delay.
        FaultConfig::reliable()
            .with_delay(Time::seconds(2.0))
            .with_jitter(Time::seconds(6.0)),
        // Arbiter failover every 4th round voids in-flight Wins.
        FaultConfig::reliable()
            .with_delay(Time::seconds(5.0))
            .with_failover(4),
        // Serialized links: offers and bids queue behind each other.
        FaultConfig::reliable().with_bandwidth(120.0),
        // Everything at once, plus drops and crashes.
        FaultConfig::reliable()
            .with_drop_probability(0.2)
            .with_delay(Time::seconds(2.0))
            .with_jitter(Time::seconds(4.0))
            .with_bandwidth(240.0)
            .with_crash(5, 2)
            .with_partition(4, 2)
            .with_failover(6),
    ];
    for fault in fault_cases {
        let scenario = Scenario::new(ClusterKind::Rack16, 5, 23)
            .with_contention(2.0)
            .with_fault(fault);
        let config = scenario
            .sim_config()
            .with_max_sim_time(Time::minutes(30_000.0));
        let themis_config = match scenario.instantiate(Policy::themis_dist_default()) {
            Policy::ThemisDist(cfg) => cfg,
            other => panic!("expected ThemisDist, got {other:?}"),
        };
        let guard = ActorReservationGuard {
            inner: DistributedThemisScheduler::new(themis_config, config.fault),
        };
        let report = Engine::new(
            Cluster::new(scenario.cluster_spec()),
            scenario.trace(),
            guard,
            config,
        )
        .run();
        assert!(
            report.scheduling_rounds > 0,
            "faulty run {} never scheduled",
            scenario.id()
        );
        assert_eq!(
            report.finished_apps() + report.unfinished_apps(),
            5,
            "every app accounted for in {}",
            scenario.id()
        );
        assert!(
            report.end_time <= Time::minutes(30_000.0) + Time::minutes(1e-6),
            "run {} overran its horizon",
            scenario.id()
        );
    }
}

//! Property test: every scheduling policy conserves GPUs.
//!
//! A `ConservationGuard` wraps the policy under test and audits every
//! scheduling round *before* the engine applies it: no decision may hand
//! out a GPU that is not currently free, no GPU may be granted twice in
//! one round, every granted GPU must exist in the cluster topology, and
//! the grand total (already allocated + granted this round) can never
//! exceed cluster capacity. Scenarios come from the scenario-matrix
//! generator with randomized axis values, so the invariant is exercised
//! across contention levels, fairness knobs, leases, bursty arrivals,
//! heavy 8-GPU jobs, GPU-generation mixes (where the speed-aware paths
//! prefer fast silicon) and (for the distributed mode) transport faults —
//! for both Themis modes and all four baselines. A dropped `Win`
//! notification or an Agent that misses a round mid-lease must never
//! leak or double-lease a GPU.

use proptest::prelude::*;
use std::collections::BTreeSet;
use themis_bench::policies::Policy;
use themis_bench::scenarios::{ClusterKind, GenMix, Matrix, Scenario};
use themis_cluster::cluster::Cluster;
use themis_cluster::ids::GpuId;
use themis_cluster::time::Time;
use themis_protocol::transport::FaultConfig;
use themis_sim::arena::AppArena;
use themis_sim::engine::Engine;
use themis_sim::scheduler::{AllocationDecision, Scheduler};

/// Scheduler wrapper that panics the moment the inner policy's decisions
/// would violate GPU conservation.
struct ConservationGuard {
    inner: Box<dyn Scheduler>,
}

impl Scheduler for ConservationGuard {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn schedule(
        &mut self,
        now: Time,
        cluster: &Cluster,
        apps: &AppArena,
    ) -> Vec<AllocationDecision> {
        let decisions = self.inner.schedule(now, cluster, apps);
        let free: BTreeSet<GpuId> = cluster.free_gpus().into_iter().collect();
        let mut granted: BTreeSet<GpuId> = BTreeSet::new();
        for decision in &decisions {
            for gpu in &decision.gpus {
                assert!(
                    cluster.spec().machine_of(*gpu).is_some(),
                    "{} granted nonexistent {gpu:?} to app {:?} at t={now:?}",
                    self.inner.name(),
                    decision.app,
                );
                assert!(
                    free.contains(gpu),
                    "{} granted non-free {gpu:?} to app {:?} at t={now:?}",
                    self.inner.name(),
                    decision.app,
                );
                assert!(
                    granted.insert(*gpu),
                    "{} granted {gpu:?} twice in one round at t={now:?}",
                    self.inner.name(),
                );
            }
        }
        assert!(
            cluster.allocated_gpus() + granted.len() <= cluster.total_gpus(),
            "{} over-committed the cluster at t={now:?}: {} allocated + {} granted > {} total",
            self.inner.name(),
            cluster.allocated_gpus(),
            granted.len(),
            cluster.total_gpus(),
        );
        decisions
    }
}

/// The randomized scenario pool: the matrix generator expanded over wide
/// axis values, including the bursty/heavy workload knobs and a faulty
/// transport point (which only the distributed policy runs).
fn property_cells() -> Vec<(Scenario, Policy)> {
    let matrix = Matrix {
        gen_mix: GenMix::ALL.to_vec(),
        apps: vec![2, 4],
        contention: vec![1.0, 4.0],
        fairness_knob: vec![0.2, 0.8],
        lease_minutes: vec![5.0, 20.0],
        burst_fraction: vec![0.0, 0.7],
        heavy_job_fraction: vec![0.0, 0.4],
        faults: vec![
            FaultConfig::reliable(),
            FaultConfig::reliable()
                .with_drop_probability(0.3)
                .with_delay(Time::seconds(8.0))
                .with_crash(3, 2),
        ],
        seeds: vec![11, 29],
        ..Matrix::point("property", ClusterKind::Rack16, 4, 11)
    };
    matrix.cells()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random cells of the property matrix keep GPUs conserved round by
    /// round. The horizon is capped: conservation is a per-round
    /// invariant, so auditing a prefix of a long run still proves it.
    #[test]
    fn policies_conserve_gpus_across_random_scenarios(index in 0usize..5000) {
        let cells = property_cells();
        let (scenario, policy) = cells[index % cells.len()].clone();
        let config = scenario
            .sim_config()
            .with_max_sim_time(Time::minutes(30_000.0));
        let guard = ConservationGuard {
            inner: scenario.instantiate(policy).build_with(&config),
        };
        let cluster = Cluster::new(scenario.cluster_spec());
        let report = Engine::new(cluster, scenario.trace(), guard, config).run();
        prop_assert!(
            report.scheduling_rounds > 0,
            "guarded run of {} on {} never scheduled",
            policy.name(),
            scenario.id(),
        );
    }
}

/// Pinned-seed audit of the distributed scheduler under every fault class
/// at once: drops, delays and an agent crashing mid-lease. The guard
/// asserts round-by-round that no GPU is granted twice, granted while
/// leased, or conjured from nowhere — i.e. a `Win` lost in transit voids
/// the grant instead of leaking it, and a crashed Agent's leases are
/// reclaimed normally.
#[test]
fn distributed_scheduler_conserves_gpus_under_faults() {
    for (drop, delay_s, crash) in [(0.4, 0.0, (0, 0)), (0.0, 10.0, (2, 1)), (0.3, 5.0, (3, 2))] {
        let scenario = Scenario::new(ClusterKind::Rack16, 5, 23)
            .with_contention(2.0)
            .with_fault(
                FaultConfig::reliable()
                    .with_drop_probability(drop)
                    .with_delay(Time::seconds(delay_s))
                    .with_crash(crash.0, crash.1),
            );
        let config = scenario
            .sim_config()
            .with_max_sim_time(Time::minutes(30_000.0));
        let guard = ConservationGuard {
            inner: scenario
                .instantiate(Policy::themis_dist_default())
                .build_with(&config),
        };
        let report = Engine::new(
            Cluster::new(scenario.cluster_spec()),
            scenario.trace(),
            guard,
            config,
        )
        .run();
        assert!(
            report.scheduling_rounds > 0,
            "faulty run {} never scheduled",
            scenario.id()
        );
        assert_eq!(
            report.finished_apps() + report.unfinished_apps(),
            5,
            "every app accounted for in {}",
            scenario.id()
        );
    }
}

//! Cross-crate integration tests: trace → simulator → schedulers → metrics,
//! plus the Arbiter ↔ Agent protocol running over the in-memory transport.

use std::collections::BTreeMap;
use themis_bench::experiments::{run_experiment, Scale};
use themis_bench::policies::Policy;
use themis_cluster::prelude::*;
use themis_core::agent::Agent;
use themis_core::arbiter::{AppStatus, Arbiter};
use themis_core::config::ThemisConfig;
use themis_core::scheduler::ThemisScheduler;
use themis_protocol::prelude::*;
use themis_sim::prelude::*;
use themis_workload::prelude::*;

fn small_trace(apps: usize, seed: u64) -> Vec<AppSpec> {
    TraceGenerator::new(TraceConfig::testbed().with_num_apps(apps).with_seed(seed)).generate()
}

#[test]
fn every_policy_completes_a_small_trace() {
    let trace = small_trace(4, 11);
    for policy in [
        Policy::themis_default(),
        Policy::Gandiva,
        Policy::Tiresias,
        Policy::Slaq,
        Policy::Drf,
    ] {
        let cluster = Cluster::new(ClusterSpec::testbed_50());
        let report = Engine::new(
            cluster,
            trace.clone(),
            policy.build(),
            SimConfig::default().with_max_sim_time(Time::minutes(1_000_000.0)),
        )
        .run();
        assert_eq!(
            report.unfinished_apps(),
            0,
            "{}: every app must finish",
            policy.name()
        );
        assert!(
            report.max_fairness().unwrap() >= 1.0 - 1e-9,
            "{}: rho can never beat a dedicated cluster",
            policy.name()
        );
        assert!(report.total_gpu_time.as_minutes() > 0.0);
    }
}

#[test]
fn gpus_are_never_double_allocated_under_themis() {
    // Run the engine step-visible: after the run, the lease table must be
    // consistent (every allocated GPU has exactly one assignment), which the
    // Cluster type enforces — a double allocation would have panicked inside
    // the engine when the decision was applied. This test exercises a
    // contended trace to make conflicts likely if the auction were buggy.
    let trace = small_trace(6, 23);
    let cluster = Cluster::new(ClusterSpec::homogeneous(1, 4, 4));
    let report = Engine::new(
        cluster,
        trace,
        ThemisScheduler::with_defaults(),
        SimConfig::default().with_max_sim_time(Time::minutes(500_000.0)),
    )
    .run();
    assert!(report.finished_apps() > 0);
    assert!(
        report.peak_contention > 1.0,
        "the trace must actually contend"
    );
}

#[test]
fn experiment_tables_are_well_formed_at_tiny_scale() {
    for id in ["fig1", "fig2", "fig8"] {
        let table = run_experiment(id, Scale::tiny()).expect("known experiment");
        assert!(!table.rows.is_empty(), "{id} must produce rows");
        for row in &table.rows {
            assert_eq!(row.len(), table.headers.len());
        }
    }
}

#[test]
fn arbiter_and_agent_talk_over_the_in_memory_transport() {
    // One auction round run end-to-end through the protocol layer: the
    // Arbiter sends an offer over a lossless in-memory link, the Agent
    // replies with a bid, and the Arbiter sends back a win notification.
    let cluster = Cluster::new(ClusterSpec::homogeneous(1, 2, 4));
    let app_spec = AppSpec::single_job(
        AppId(0),
        Time::ZERO,
        JobSpec::new(JobId(0), ModelArch::Vgg16, 1000.0, Time::minutes(0.1), 4),
    );
    let runtime = AppRuntime::with_default_hpo(app_spec);
    let config = ThemisConfig::default();
    let mut agent = Agent::new(AppId(0), &config);
    let mut arbiter = Arbiter::new(config);
    let now = Time::minutes(1.0);

    // Arbiter side endpoint sends ArbiterToAgent, receives AgentToArbiter.
    let (arbiter_ep, agent_ep) = InMemoryLink::reliable_pair::<ArbiterToAgent, AgentToArbiter>();

    // Step 1-2: rho probe.
    arbiter_ep
        .send(now, ArbiterToAgent::QueryRho { round: 0 })
        .unwrap();
    let msg = agent_ep.try_recv(now).unwrap();
    assert!(matches!(msg, ArbiterToAgent::QueryRho { round: 0 }));
    let rho = agent.current_rho(now, &runtime, &cluster).rho;
    agent_ep
        .send(
            now,
            AgentToArbiter::Rho(RhoReport {
                round: 0,
                app: AppId(0),
                rho,
            }),
        )
        .unwrap();
    let report = arbiter_ep.try_recv(now).unwrap();
    assert_eq!(report.app(), AppId(0));

    // Step 3-4: offer and bid.
    let offer = arbiter.make_offer(now, cluster.free_vector());
    arbiter_ep
        .send(now, ArbiterToAgent::Offer(offer.clone()))
        .unwrap();
    let offer_msg = match agent_ep.try_recv(now).unwrap() {
        ArbiterToAgent::Offer(o) => o,
        other => panic!("expected an offer, got {other:?}"),
    };
    let bid = agent.prepare_bid(now, &runtime, &cluster, &offer_msg.resources);
    agent_ep
        .send(
            now,
            AgentToArbiter::Bid {
                round: offer_msg.round,
                table: bid,
            },
        )
        .unwrap();
    let bid_msg = arbiter_ep.try_recv(now).unwrap();
    let bids = match bid_msg {
        AgentToArbiter::Bid { table, .. } => vec![table],
        other => panic!("expected a bid, got {other:?}"),
    };

    // Step 5: auction and win notification.
    let statuses = vec![AppStatus {
        app: AppId(0),
        rho,
        unmet_demand: runtime.unmet_demand(&cluster),
        footprint: Default::default(),
    }];
    let outcome = arbiter.run_auction(
        &offer.resources,
        &statuses,
        &[AppId(0)],
        &bids,
        cluster.spec(),
    );
    let grants = outcome.all_grants();
    let grant = &grants[&AppId(0)];
    assert_eq!(
        grant.total(),
        4,
        "the lone app should win the whole machine"
    );
    arbiter_ep
        .send(
            now,
            ArbiterToAgent::Win(WinNotification {
                round: outcome.round,
                app: AppId(0),
                job: JobId(0),
                gpus: vec![GpuId(0), GpuId(1), GpuId(2), GpuId(3)],
                lease_expires_at: now + Time::minutes(20.0),
            }),
        )
        .unwrap();
    assert!(matches!(
        agent_ep.try_recv(now).unwrap(),
        ArbiterToAgent::Win(_)
    ));
}

#[test]
fn lossy_transport_only_degrades_but_never_corrupts() {
    // Bids lost in transit mean the Arbiter simply auctions among fewer
    // participants — drops must never produce phantom messages.
    let (tx, rx) =
        InMemoryLink::pair::<u32, u32>(FaultConfig::lossy(0.4, 3), FaultConfig::reliable());
    for i in 0..200u32 {
        tx.send(Time::ZERO, i).unwrap();
    }
    let received = rx.drain(Time::ZERO);
    assert!(received.len() < 200);
    // Order and content of what *is* delivered are intact.
    let mut sorted = received.clone();
    sorted.sort_unstable();
    assert_eq!(received, sorted);
    assert!(received.iter().all(|v| *v < 200));
}

#[test]
fn timeline_records_allocation_changes() {
    let cluster = Cluster::new(ClusterSpec::homogeneous(1, 1, 4));
    let trace = two_app_micro_trace_reexport();
    let report = Engine::new(
        cluster,
        trace,
        ThemisScheduler::with_defaults(),
        SimConfig::default().with_checkpoint_overhead(Time::ZERO),
    )
    .run();
    for outcome in &report.apps {
        assert!(
            !outcome.gpu_timeline.is_empty(),
            "{} must have a GPU timeline",
            outcome.app
        );
        // Timelines start no earlier than arrival (t = 40 min).
        assert!(outcome.gpu_timeline[0].0 >= Time::minutes(40.0));
    }
}

fn two_app_micro_trace_reexport() -> Vec<AppSpec> {
    themis_workload::trace::two_app_micro_trace()
}

#[test]
fn apps_map_is_keyed_consistently() {
    // AppRuntime instances must be addressable by their own id in the
    // engine's map (a regression guard for id/key mismatches).
    let trace = small_trace(3, 5);
    let runtimes: BTreeMap<AppId, AppRuntime> = trace
        .into_iter()
        .map(|spec| (spec.id, AppRuntime::with_default_hpo(spec)))
        .collect();
    for (id, rt) in &runtimes {
        assert_eq!(*id, rt.id());
    }
}

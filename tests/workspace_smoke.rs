//! Workspace wiring smoke test.
//!
//! Exercises the full quickstart path — `Cluster` + `TraceGenerator` +
//! `ThemisScheduler` + `Engine` — end to end, twice, and asserts the two
//! runs are identical. This pins down both that the crate graph is wired
//! correctly (every layer of the workspace participates) and that the
//! simulator is deterministic: same seed, identical `SimReport`.

use themis_cluster::prelude::*;
use themis_core::prelude::*;
use themis_sim::prelude::*;
use themis_workload::prelude::*;

/// One full quickstart run with a fixed seed.
fn run_once(seed: u64) -> SimReport {
    let cluster = Cluster::new(ClusterSpec::homogeneous(2, 4, 4));
    let trace =
        TraceGenerator::new(TraceConfig::default().with_num_apps(8).with_seed(seed)).generate();
    let themis = ThemisScheduler::new(ThemisConfig::default());
    Engine::new(cluster, trace, themis, SimConfig::default()).run()
}

#[test]
fn quickstart_path_is_deterministic() {
    let first = run_once(42);
    let second = run_once(42);
    assert_eq!(
        first, second,
        "identical seeds must produce identical SimReports"
    );
    assert!(
        first.finished_apps() > 0,
        "the quickstart workload should finish at least one app"
    );
}

#[test]
fn different_seeds_change_the_workload() {
    let a = run_once(1);
    let b = run_once(2);
    // The traces differ, so the reports should too (app count is fixed but
    // arrivals/durations are seed-dependent).
    assert_ne!(a, b, "different seeds should produce different runs");
}

//! Sweeping Themis's fairness knob `f`.
//!
//! The knob trades finish-time fairness for placement efficiency (§8.2 of
//! the paper): higher `f` offers resources to fewer, worse-off apps (better
//! worst-case fairness); lower `f` widens visibility so the Arbiter can
//! pack placement-sensitive apps better (lower GPU time). This example runs
//! a small sweep and prints both metrics per `f` — a miniature of
//! Figures 4a and 4b.
//!
//! Run with: `cargo run --release -p themis-bench --example fairness_knob`

use themis_cluster::prelude::*;
use themis_core::prelude::*;
use themis_sim::prelude::*;
use themis_workload::prelude::*;

fn main() {
    let trace =
        TraceGenerator::new(TraceConfig::testbed().with_num_apps(10).with_seed(3)).generate();
    println!(
        "{:<6} {:>10} {:>12} {:>14}",
        "f", "max_rho", "median_rho", "gpu_time_min"
    );

    for f in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let cluster = Cluster::new(ClusterSpec::testbed_50());
        let themis = ThemisScheduler::new(ThemisConfig::default().with_fairness_knob(f));
        let report = Engine::new(
            cluster,
            trace.clone(),
            themis,
            SimConfig::default().with_max_sim_time(Time::minutes(1_000_000.0)),
        )
        .run();

        let mut rhos = report.rhos();
        rhos.sort_by(|a, b| a.partial_cmp(b).expect("finite rho"));
        let median = if rhos.is_empty() {
            f64::NAN
        } else {
            rhos[rhos.len() / 2]
        };
        println!(
            "{f:<6.1} {:>10.2} {:>12.2} {:>14.0}",
            report.max_fairness().unwrap_or(f64::NAN),
            median,
            report.total_gpu_time.as_minutes(),
        );
    }
    println!("\nthe paper picks f = 0.8: most of the fairness benefit at a modest efficiency cost");
}

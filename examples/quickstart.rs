//! Quickstart: one Themis auction round, step by step.
//!
//! Builds a small cluster, two apps, and walks through the five steps of a
//! Themis scheduling round (§3.1 of the paper): probe ρ, offer resources to
//! the worst-off apps, collect bids, run the partial-allocation auction,
//! and hand out the winning GPUs.
//!
//! Run with: `cargo run -p themis-bench --example quickstart`

use themis_cluster::prelude::*;
use themis_core::agent::Agent;
use themis_core::arbiter::{AppStatus, Arbiter};
use themis_core::config::ThemisConfig;
use themis_sim::app_runtime::AppRuntime;
use themis_workload::prelude::*;

fn main() {
    // A cluster with two racks of two 4-GPU machines each.
    let cluster = Cluster::new(ClusterSpec::homogeneous(2, 2, 4));
    println!(
        "cluster: {} GPUs on {} machines in {} racks",
        cluster.total_gpus(),
        cluster.spec().total_machines(),
        cluster.spec().total_racks()
    );

    // Two single-job apps: a placement-sensitive VGG16 app and a
    // placement-insensitive ResNet50 app, both wanting 4 GPUs.
    let mut vgg_job = JobSpec::new(JobId(0), ModelArch::Vgg16, 2000.0, Time::minutes(0.05), 4);
    vgg_job.gpus_per_task = 4;
    let resnet_job = JobSpec::new(JobId(0), ModelArch::ResNet50, 1000.0, Time::minutes(0.1), 4);
    let apps = [
        AppRuntime::with_default_hpo(AppSpec::single_job(AppId(0), Time::ZERO, vgg_job)),
        AppRuntime::with_default_hpo(AppSpec::single_job(AppId(1), Time::ZERO, resnet_job)),
    ];

    let config = ThemisConfig::default().with_fairness_knob(0.0); // offer to everyone
    let mut arbiter = Arbiter::new(config);
    let now = Time::minutes(5.0);

    // Step 1-2: probe every Agent for its current finish-time fairness.
    let mut agents: Vec<Agent> = apps.iter().map(|a| Agent::new(a.id(), &config)).collect();
    let statuses: Vec<AppStatus> = apps
        .iter()
        .zip(&agents)
        .map(|(rt, agent)| {
            let rho = agent.current_rho(now, rt, &cluster).rho;
            println!("{}: current rho = {rho:.2}", rt.id());
            AppStatus {
                app: rt.id(),
                rho,
                unmet_demand: rt.unmet_demand(&cluster),
                footprint: cluster.gpus_of_app(rt.id()).machines(cluster.spec()),
            }
        })
        .collect();

    // Step 3: offer the free GPUs to the worst-off 1-f fraction of apps.
    let participants = arbiter.select_participants(&statuses);
    let offer = cluster.free_vector();
    println!(
        "offering {} GPUs to {} participants: {participants:?}",
        offer.total(),
        participants.len()
    );

    // Step 4: each participating Agent prepares a bid table.
    let bids: Vec<_> = participants
        .iter()
        .map(|app| {
            let idx = app.index();
            let bid = agents[idx].prepare_bid(now, &apps[idx], &cluster, &offer);
            println!(
                "{app}: bid table with {} entries, best rho {:.2}",
                bid.len(),
                bid.best_entry().map(|e| e.rho).unwrap_or(f64::NAN)
            );
            bid
        })
        .collect();

    // Step 5: run the partial-allocation auction and report the winners.
    let outcome = arbiter.run_auction(&offer, &statuses, &participants, &bids, cluster.spec());
    for (app, grant) in outcome.all_grants() {
        println!(
            "{app} wins {} GPUs: {:?}",
            grant.total(),
            grant.iter().collect::<Vec<_>>()
        );
    }
    for award in &outcome.auction.awards {
        println!(
            "{}: proportional-fair {} GPUs, hidden-payment factor {:.2}",
            award.app,
            award.proportional_fair.total(),
            award.payment_factor
        );
    }
    println!(
        "{} GPUs left unallocated by the auction were handed out work-conservingly",
        outcome.auction.leftover.total()
    );
}

//! A hyper-parameter exploration app on a shared cluster.
//!
//! Builds one app with eight hyper-parameter configurations of a VGG16
//! model, runs it under Themis alongside a competing ResNet50 app, and
//! shows how the top-level HyperBand scheduler kills poorly-converging
//! configurations while Themis keeps the cluster shared fairly.
//!
//! Run with: `cargo run -p themis-bench --example hyperparam_sweep`

use themis_cluster::prelude::*;
use themis_core::prelude::*;
use themis_sim::prelude::*;
use themis_workload::loss::LossCurve;
use themis_workload::prelude::*;

fn main() {
    let cluster = Cluster::new(ClusterSpec::homogeneous(2, 4, 4));

    // App 0: a sweep over 8 learning-rate configurations. The convergence
    // exponent stands in for "how good this configuration is": larger is
    // faster convergence.
    let sweep_jobs: Vec<JobSpec> = (0..8)
        .map(|i| {
            let exponent = 0.30 + 0.06 * i as f64;
            let mut job = JobSpec::new(
                JobId(i as u32),
                ModelArch::Vgg16,
                4000.0,
                Time::minutes(0.05),
                4,
            );
            job.loss_curve = LossCurve::PowerLaw {
                floor: 0.0,
                scale: 2.0,
                exponent,
            };
            job.target_loss = 0.1;
            job
        })
        .collect();
    let sweep_app = AppSpec::new(AppId(0), Time::ZERO, sweep_jobs);

    // App 1: a single-configuration ResNet50 training job competing for the
    // same cluster.
    let competitor = AppSpec::single_job(
        AppId(1),
        Time::ZERO,
        JobSpec::new(JobId(0), ModelArch::ResNet50, 3000.0, Time::minutes(0.1), 8),
    );

    println!(
        "running a {}-job hyper-parameter sweep against a competing app on {} GPUs",
        sweep_app.num_jobs(),
        cluster.total_gpus()
    );

    let report = Engine::new(
        cluster,
        vec![sweep_app, competitor],
        ThemisScheduler::with_defaults(),
        SimConfig::default().with_lease(Time::minutes(10.0)),
    )
    .run();

    for outcome in &report.apps {
        println!(
            "{}: finished at {} (completion {:.1} min, ideal {:.1} min, rho {:.2}, placement {:.2})",
            outcome.app,
            outcome
                .finished_at
                .map(|t| format!("{:.1} min", t.as_minutes()))
                .unwrap_or_else(|| "never".into()),
            outcome.completion_time.map(|t| t.as_minutes()).unwrap_or(f64::NAN),
            outcome.ideal_running_time.as_minutes(),
            outcome.rho.unwrap_or(f64::NAN),
            outcome.placement_score,
        );
    }
    println!(
        "total GPU time: {:.0} GPU-minutes, Jain's index {:.3}, max fairness {:.2}",
        report.total_gpu_time.as_minutes(),
        report.jains_index().unwrap_or(f64::NAN),
        report.max_fairness().unwrap_or(f64::NAN)
    );
    println!(
        "the sweep app finishes once its best configuration converges; HyperBand killed the rest early"
    );
}

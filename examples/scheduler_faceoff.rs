//! Themis vs the baselines on a synthetic enterprise trace.
//!
//! Replays the same seeded trace under Themis, Gandiva, SLAQ, Tiresias and
//! DRF on the paper's 50-GPU testbed cluster, then prints the §8.1 metrics
//! (max finish-time fairness, Jain's index, mean completion time, placement
//! score and GPU time) side by side — a miniature of Figures 5-7.
//!
//! Run with: `cargo run --release -p themis-bench --example scheduler_faceoff`

use themis_baselines::prelude::*;
use themis_cluster::prelude::*;
use themis_core::prelude::*;
use themis_sim::prelude::*;
use themis_sim::scheduler::Scheduler;
use themis_workload::prelude::*;

fn run(name: &str, scheduler: Box<dyn Scheduler>, trace: &[AppSpec]) -> SimReport {
    let cluster = Cluster::new(ClusterSpec::testbed_50());
    let sim = SimConfig::default().with_max_sim_time(Time::minutes(1_000_000.0));
    let report = Engine::new(cluster, trace.to_vec(), scheduler, sim).run();
    println!(
        "{name:<10} max_rho {:>8.2}  jain {:>5.3}  mean_ct {:>8.1} min  placement {:>5.3}  gpu_time {:>9.0}",
        report.max_fairness().unwrap_or(f64::NAN),
        report.jains_index().unwrap_or(f64::NAN),
        report
            .mean_completion_time()
            .map(|t| t.as_minutes())
            .unwrap_or(f64::NAN),
        report.mean_placement_score().unwrap_or(f64::NAN),
        report.total_gpu_time.as_minutes(),
    );
    report
}

fn main() {
    let trace =
        TraceGenerator::new(TraceConfig::testbed().with_num_apps(12).with_seed(7)).generate();
    let stats = themis_workload::trace::TraceStats::compute(&trace);
    println!(
        "trace: {} apps, {} jobs, median {} jobs/app, median job duration {:.1} min",
        stats.num_apps, stats.num_jobs, stats.median_jobs_per_app, stats.median_job_duration
    );
    println!(
        "{:<10} {:>12}  {:>10} {:>16} {:>15} {:>14}",
        "scheduler", "max_rho", "jain", "mean_completion", "placement", "gpu_time"
    );

    let themis = run("themis", Box::new(ThemisScheduler::with_defaults()), &trace);
    run("gandiva", Box::new(Gandiva::new()), &trace);
    run("slaq", Box::new(Slaq::new()), &trace);
    let tiresias = run("tiresias", Box::new(Tiresias::new()), &trace);
    run("drf", Box::new(Drf::new()), &trace);

    let improvement =
        tiresias.max_fairness().unwrap_or(f64::NAN) / themis.max_fairness().unwrap_or(f64::NAN);
    println!("\nThemis improves worst-case finish-time fairness over Tiresias by {improvement:.2}x on this trace");
}
